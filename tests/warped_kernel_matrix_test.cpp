// Kernel configuration matrix: a star-topology LP system with heavy
// cross-traffic (the worst case for rollback cascades) must produce
// node-count-independent results under every combination of network
// latency, state-saving period and optimism window — and its statistics
// must satisfy the Time Warp accounting identities.

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "obs/session.hpp"
#include "warped/kernel.hpp"

namespace pls::warped {
namespace {

/// Hub-and-spokes: the hub broadcasts a round counter to all spokes every
/// `period`; each spoke echoes back a transformed value one tick later.
/// The hub folds every echo into a running checksum.  All cross-LP edges
/// touch the hub, so any partition of the spokes creates cross-node
/// traffic in both directions at every round.
class HubLp final : public LogicalProcess {
 public:
  HubLp(LpId first_spoke, LpId num_spokes, SimTime period)
      : first_(first_spoke), n_(num_spokes), period_(period) {}

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) tick = true;
      else s.b = s.b * 31 + e.value;  // checksum over echoes
    }
    if (!tick) return;
    s.a += 1;  // round counter
    if (ctx.now() + 1 <= ctx.end_time()) {
      for (LpId i = 0; i < n_; ++i) {
        ctx.send(first_ + i, ctx.now() + 1, 0, s.a + i);
      }
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId first_;
  LpId n_;
  SimTime period_;
};

class SpokeLp final : public LogicalProcess {
 public:
  explicit SpokeLp(LpId hub) : hub_(hub) {}

  void init(Context&) override {}

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      if (e.port == kTickPort) continue;
      s.a += e.value;
      if (ctx.now() + 1 <= ctx.end_time()) {
        ctx.send(hub_, ctx.now() + 1, 0, s.a ^ (s.a >> 3));
      }
    }
  }

 private:
  LpId hub_;
};

struct Star {
  std::vector<std::unique_ptr<LogicalProcess>> owners;
  std::vector<LogicalProcess*> lps;
};

Star make_star(LpId spokes, SimTime period) {
  Star s;
  s.owners.push_back(std::make_unique<HubLp>(1, spokes, period));
  for (LpId i = 0; i < spokes; ++i) {
    s.owners.push_back(std::make_unique<SpokeLp>(0));
  }
  for (auto& o : s.owners) s.lps.push_back(o.get());
  return s;
}

// ---- masked-word (lanes > 1) variants --------------------------------------
//
// The same star, speaking the batched-stimulus event dialect: full 64-bit
// value words with per-lane change masks, masked application at the
// receiver and wide (LpState::w) state words.  Any rollback that cancels a
// masked event must cancel *all* its lanes and re-execution must rebuild
// the same words — node-count invariance of the fold checksums proves it.

class MaskedHubLp final : public LogicalProcess {
 public:
  MaskedHubLp(LpId first_spoke, LpId num_spokes, SimTime period)
      : first_(first_spoke), n_(num_spokes), period_(period) {}

  LpState initial_state() const override {
    LpState s;
    s.w.assign(1, 0);  // lane-word fold of the echoed (value & mask) bits
    return s;
  }

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) {
        tick = true;
        continue;
      }
      s.b = s.b * 31 + (e.value ^ e.mask);  // checksum folds the mask too
      s.w[0] ^= e.value & e.mask;
    }
    if (!tick) return;
    s.a += 1;
    if (ctx.now() + 1 <= ctx.end_time()) {
      const std::uint64_t v = s.a * 0x9e3779b97f4a7c15ULL;
      for (LpId i = 0; i < n_; ++i) {
        // Rotating non-zero per-spoke change mask: every round touches a
        // different lane subset on every spoke.
        const std::uint64_t m = std::rotl(v | 1, static_cast<int>(i));
        ctx.send(first_ + i, ctx.now() + 1, 0, v + i, m);
      }
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId first_;
  LpId n_;
  SimTime period_;
};

class MaskedSpokeLp final : public LogicalProcess {
 public:
  explicit MaskedSpokeLp(LpId hub) : hub_(hub) {}

  LpState initial_state() const override {
    LpState s;
    s.w.assign(1, 0);  // XOR history of received masks
    return s;
  }

  void init(Context&) override {}

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      if (e.port == kTickPort) continue;
      // Masked application: only the flagged lanes may change.
      s.a = (s.a & ~e.mask) | (e.value & e.mask);
      s.w[0] ^= e.mask;
      if (ctx.now() + 1 <= ctx.end_time()) {
        ctx.send(hub_, ctx.now() + 1, 0, s.a ^ (s.a >> 3),
                 std::rotl(e.mask, 1) | 1);
      }
    }
  }

 private:
  LpId hub_;
};

Star make_masked_star(LpId spokes, SimTime period) {
  Star s;
  s.owners.push_back(std::make_unique<MaskedHubLp>(1, spokes, period));
  for (LpId i = 0; i < spokes; ++i) {
    s.owners.push_back(std::make_unique<MaskedSpokeLp>(0));
  }
  for (auto& o : s.owners) s.lps.push_back(o.get());
  return s;
}

// ---- multi-word (lanes > 64) variants --------------------------------------
//
// Three value words per event (a 192-lane dialect): payload word 0 rides
// the legacy Event slots and words 1..2 live in the arena-pooled
// extension, so rollback, anti-messages, snapshot restore and fossil
// collection all move pooled blocks.  Node-count invariance of the
// per-word folds proves every word survives the gauntlet.

constexpr std::uint32_t kWideWords = 3;

class WideMaskedHubLp final : public LogicalProcess {
 public:
  WideMaskedHubLp(LpId first_spoke, LpId num_spokes, SimTime period)
      : first_(first_spoke), n_(num_spokes), period_(period) {}

  LpState initial_state() const override {
    LpState s;
    s.w.assign(kWideWords, 0);  // per-word fold of echoed (value & mask)
    return s;
  }

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) {
        tick = true;
        continue;
      }
      for (std::uint32_t w = 0; w < kWideWords; ++w) {
        s.b = s.b * 31 + (e.value_word(w) ^ e.mask_word(w));
        s.w[w] ^= e.value_word(w) & e.mask_word(w);
      }
    }
    if (!tick) return;
    s.a += 1;
    if (ctx.now() + 1 <= ctx.end_time()) {
      const std::uint64_t v = s.a * 0x9e3779b97f4a7c15ULL;
      for (LpId i = 0; i < n_; ++i) {
        std::uint64_t values[kWideWords];
        std::uint64_t masks[kWideWords];
        for (std::uint32_t w = 0; w < kWideWords; ++w) {
          values[w] = v + i + w * 0x100000001b3ULL;
          // Rotating non-zero per-word masks: each round flips a
          // different lane subset in every word of every spoke.
          masks[w] = std::rotl(v | 1, static_cast<int>(i + w * 21));
        }
        ctx.send_wide(first_ + i, ctx.now() + 1, 0, values, masks,
                      kWideWords);
      }
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId first_;
  LpId n_;
  SimTime period_;
};

class WideMaskedSpokeLp final : public LogicalProcess {
 public:
  explicit WideMaskedSpokeLp(LpId hub) : hub_(hub) {}

  LpState initial_state() const override {
    LpState s;
    // Words 0..1 extend the lane values (word 0 lives in s.a); word 2 is
    // the XOR history of every mask word received.
    s.w.assign(kWideWords, 0);
    return s;
  }

  void init(Context&) override {}

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      if (e.port == kTickPort) continue;
      std::uint64_t lane[kWideWords] = {s.a, s.w[0], s.w[1]};
      for (std::uint32_t w = 0; w < kWideWords; ++w) {
        lane[w] = (lane[w] & ~e.mask_word(w)) | (e.value_word(w) &
                                                 e.mask_word(w));
        s.w[2] ^= e.mask_word(w);
      }
      s.a = lane[0];
      s.w[0] = lane[1];
      s.w[1] = lane[2];
      if (ctx.now() + 1 <= ctx.end_time()) {
        std::uint64_t values[kWideWords];
        std::uint64_t masks[kWideWords];
        for (std::uint32_t w = 0; w < kWideWords; ++w) {
          values[w] = lane[w] ^ (lane[w] >> 3);
          masks[w] = std::rotl(e.mask_word(w), 1) | 1;
        }
        ctx.send_wide(hub_, ctx.now() + 1, 0, values, masks, kWideWords);
      }
    }
  }

 private:
  LpId hub_;
};

Star make_wide_masked_star(LpId spokes, SimTime period) {
  Star s;
  s.owners.push_back(std::make_unique<WideMaskedHubLp>(1, spokes, period));
  for (LpId i = 0; i < spokes; ++i) {
    s.owners.push_back(std::make_unique<WideMaskedSpokeLp>(0));
  }
  for (auto& o : s.owners) s.lps.push_back(o.get());
  return s;
}

struct MatrixParam {
  std::uint32_t nodes;
  std::uint64_t latency_ns;
  std::uint32_t state_period;
  SimTime window;
  ThrottleMode mode;
};

class KernelMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(KernelMatrix, StarResultsAreNodeCountInvariant) {
  const MatrixParam prm = GetParam();
  constexpr LpId kSpokes = 14;
  constexpr SimTime kEnd = 400;

  // Reference: single node, plain configuration.
  Star ref_star = make_star(kSpokes, 7);
  KernelConfig ref_cfg;
  ref_cfg.end_time = kEnd;
  Kernel ref_kernel(ref_star.lps, std::vector<std::uint32_t>(kSpokes + 1, 0),
                    ref_cfg);
  const RunStats ref = ref_kernel.run();

  Star star = make_star(kSpokes, 7);
  KernelConfig cfg;
  cfg.end_time = kEnd;
  cfg.num_nodes = prm.nodes;
  cfg.network.latency_ns = prm.latency_ns;
  cfg.network.send_overhead_ns = prm.latency_ns / 20;
  cfg.state_period = prm.state_period;
  cfg.throttle.mode = prm.mode;
  cfg.optimism_window = prm.window;
  cfg.gvt_interval_us = 500;
  std::vector<std::uint32_t> node_of(kSpokes + 1);
  for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % prm.nodes;
  Kernel kernel(star.lps, node_of, cfg);
  const RunStats out = kernel.run();

  // Identical committed results.
  ASSERT_EQ(out.final_states.size(), ref.final_states.size());
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed);

  // Time Warp accounting identities.
  EXPECT_EQ(out.totals.events_processed,
            out.totals.events_committed + out.totals.events_rolled_back);
  EXPECT_EQ(out.final_gvt, kEndOfTime);
  EXPECT_FALSE(out.out_of_memory);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, KernelMatrix,
    ::testing::Values(
        MatrixParam{2, 0, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{2, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{3, 5000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 20000, 4, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 20000, 1, 30, ThrottleMode::kFixed},
        MatrixParam{4, 5000, 8, 15, ThrottleMode::kFixed},
        MatrixParam{8, 10000, 3, 0, ThrottleMode::kUnlimited},
        MatrixParam{8, 40000, 1, 50, ThrottleMode::kFixed},
        // Adaptive throttling must preserve the committed results under
        // both copy-state and periodic state saving.
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kAdaptive},
        MatrixParam{8, 10000, 3, 0, ThrottleMode::kAdaptive}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "_lat" +
             std::to_string(info.param.latency_ns / 1000) + "us_sp" +
             std::to_string(info.param.state_period) + "_w" +
             std::to_string(info.param.window) + "_" +
             to_string(info.param.mode);
    });

// Masked (lanes > 1) events through the same rollback gauntlet: whole-word
// cancellation via anti-messages, coast-forward replay of wide states and
// migration-free node-count invariance of both the value checksum (s.b)
// and the mask history (w[0]).
class MaskedKernelMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(MaskedKernelMatrix, MaskedStarResultsAreNodeCountInvariant) {
  const MatrixParam prm = GetParam();
  constexpr LpId kSpokes = 14;
  constexpr SimTime kEnd = 400;

  Star ref_star = make_masked_star(kSpokes, 7);
  KernelConfig ref_cfg;
  ref_cfg.end_time = kEnd;
  Kernel ref_kernel(ref_star.lps, std::vector<std::uint32_t>(kSpokes + 1, 0),
                    ref_cfg);
  const RunStats ref = ref_kernel.run();

  // The masked traffic is real: the hub folded lane words and every spoke
  // saw a non-trivial mask history.
  EXPECT_NE(ref.final_states[0].b, 0u);
  for (LpId i = 1; i <= kSpokes; ++i) {
    EXPECT_NE(ref.final_states[i].w.at(0), 0u) << "spoke " << i;
  }

  Star star = make_masked_star(kSpokes, 7);
  KernelConfig cfg;
  cfg.end_time = kEnd;
  cfg.num_nodes = prm.nodes;
  cfg.network.latency_ns = prm.latency_ns;
  cfg.network.send_overhead_ns = prm.latency_ns / 20;
  cfg.state_period = prm.state_period;
  cfg.throttle.mode = prm.mode;
  cfg.optimism_window = prm.window;
  cfg.gvt_interval_us = 500;
  std::vector<std::uint32_t> node_of(kSpokes + 1);
  for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % prm.nodes;
  Kernel kernel(star.lps, node_of, cfg);
  const RunStats out = kernel.run();

  ASSERT_EQ(out.final_states.size(), ref.final_states.size());
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed);
  EXPECT_EQ(out.totals.events_processed,
            out.totals.events_committed + out.totals.events_rolled_back);
  EXPECT_EQ(out.final_gvt, kEndOfTime);
  EXPECT_FALSE(out.out_of_memory);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, MaskedKernelMatrix,
    ::testing::Values(
        // Rollback storms: zero window, unlimited optimism, rising latency.
        MatrixParam{2, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 40000, 4, 0, ThrottleMode::kUnlimited},
        MatrixParam{8, 10000, 3, 0, ThrottleMode::kUnlimited},
        // Throttled modes must commit the same masked words too.
        MatrixParam{4, 5000, 8, 15, ThrottleMode::kFixed},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kAdaptive}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "_lat" +
             std::to_string(info.param.latency_ns / 1000) + "us_sp" +
             std::to_string(info.param.state_period) + "_w" +
             std::to_string(info.param.window) + "_" +
             to_string(info.param.mode);
    });

// Multi-word events (pooled payload extensions + wide snapshots) through
// the same rollback gauntlet.
class WideMaskedKernelMatrix : public ::testing::TestWithParam<MatrixParam> {
};

TEST_P(WideMaskedKernelMatrix, WideStarResultsAreNodeCountInvariant) {
  const MatrixParam prm = GetParam();
  constexpr LpId kSpokes = 14;
  constexpr SimTime kEnd = 400;

  Star ref_star = make_wide_masked_star(kSpokes, 7);
  KernelConfig ref_cfg;
  ref_cfg.end_time = kEnd;
  Kernel ref_kernel(ref_star.lps, std::vector<std::uint32_t>(kSpokes + 1, 0),
                    ref_cfg);
  const RunStats ref = ref_kernel.run();

  // Every word of the hub's fold and every spoke's mask history moved.
  for (std::uint32_t w = 0; w < kWideWords; ++w) {
    EXPECT_NE(ref.final_states[0].w.at(w), 0u) << "hub fold word " << w;
  }
  for (LpId i = 1; i <= kSpokes; ++i) {
    EXPECT_NE(ref.final_states[i].w.at(2), 0u) << "spoke " << i;
  }

  Star star = make_wide_masked_star(kSpokes, 7);
  KernelConfig cfg;
  cfg.end_time = kEnd;
  cfg.num_nodes = prm.nodes;
  cfg.network.latency_ns = prm.latency_ns;
  cfg.network.send_overhead_ns = prm.latency_ns / 20;
  cfg.state_period = prm.state_period;
  cfg.throttle.mode = prm.mode;
  cfg.optimism_window = prm.window;
  cfg.gvt_interval_us = 500;
  std::vector<std::uint32_t> node_of(kSpokes + 1);
  for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % prm.nodes;
  Kernel kernel(star.lps, node_of, cfg);
  const RunStats out = kernel.run();

  ASSERT_EQ(out.final_states.size(), ref.final_states.size());
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed);
  EXPECT_EQ(out.totals.events_processed,
            out.totals.events_committed + out.totals.events_rolled_back);
  EXPECT_EQ(out.final_gvt, kEndOfTime);
  EXPECT_FALSE(out.out_of_memory);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, WideMaskedKernelMatrix,
    ::testing::Values(
        // Rollback storms with pooled extensions in flight.
        MatrixParam{2, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{8, 10000, 3, 0, ThrottleMode::kUnlimited},
        // Periodic state saving coast-forwards wide snapshots.
        MatrixParam{4, 5000, 8, 15, ThrottleMode::kFixed},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kAdaptive}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "_lat" +
             std::to_string(info.param.latency_ns / 1000) + "us_sp" +
             std::to_string(info.param.state_period) + "_w" +
             std::to_string(info.param.window) + "_" +
             to_string(info.param.mode);
    });

// Send coalescing on vs off through the same rollback gauntlet: batching
// only changes *when* messages cross the channel (one Batch per
// destination per burst vs a one-message batch per send), never what the
// receiver eventually commits.  Bit-identical final states and committed
// totals prove the coalescer's GVT obligations (epoch color and
// count_send at add time, min_recv_time in the join report, burst-end
// flush) hold under rollback storms at every node count.
class CoalesceKernelMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CoalesceKernelMatrix, CoalescingOnOffResultsAreBitIdentical) {
  const MatrixParam prm = GetParam();
  constexpr LpId kSpokes = 14;
  constexpr SimTime kEnd = 400;

  auto run_once = [&](bool coalesce) {
    Star star = make_star(kSpokes, 7);
    KernelConfig cfg;
    cfg.end_time = kEnd;
    cfg.num_nodes = prm.nodes;
    cfg.network.latency_ns = prm.latency_ns;
    cfg.network.send_overhead_ns = prm.latency_ns / 20;
    cfg.state_period = prm.state_period;
    cfg.throttle.mode = prm.mode;
    cfg.optimism_window = prm.window;
    cfg.gvt_interval_us = 500;
    cfg.coalesce.enabled = coalesce;
    std::vector<std::uint32_t> node_of(kSpokes + 1);
    for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % prm.nodes;
    Kernel kernel(star.lps, node_of, cfg);
    return kernel.run();
  };

  const RunStats off = run_once(false);
  const RunStats on = run_once(true);

  ASSERT_EQ(on.final_states.size(), off.final_states.size());
  for (std::size_t i = 0; i < off.final_states.size(); ++i) {
    EXPECT_EQ(on.final_states[i], off.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(on.totals.events_committed, off.totals.events_committed);
  EXPECT_EQ(on.final_gvt, kEndOfTime);
  EXPECT_EQ(off.final_gvt, kEndOfTime);

  // Both modes route through the batch path; disabled mode degenerates to
  // one message per batch by construction.  (No lower bound is asserted
  // on the enabled mode's batch sizes: under heavy sanitizer slowdown the
  // age bound can legally flush singletons.)
  EXPECT_EQ(off.totals.batch_msgs_sent, off.totals.batches_sent);
  EXPECT_GT(on.totals.batch_msgs_sent, 0u);
  EXPECT_LE(on.totals.batches_sent, on.totals.batch_msgs_sent);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CoalesceKernelMatrix,
    ::testing::Values(
        // Rollback storms: zero window, unlimited optimism, rising latency.
        MatrixParam{2, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kUnlimited},
        MatrixParam{4, 40000, 4, 0, ThrottleMode::kUnlimited},
        MatrixParam{8, 10000, 3, 0, ThrottleMode::kUnlimited},
        // Throttled modes must commit the same results too.
        MatrixParam{4, 5000, 8, 15, ThrottleMode::kFixed},
        MatrixParam{4, 20000, 1, 0, ThrottleMode::kAdaptive}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes) + "_lat" +
             std::to_string(info.param.latency_ns / 1000) + "us_sp" +
             std::to_string(info.param.state_period) + "_w" +
             std::to_string(info.param.window) + "_" +
             to_string(info.param.mode);
    });

TEST(KernelMatrixExtras, TracingDoesNotChangeCommittedResults) {
  // Observability is pure observation: the same star with tracing and the
  // metrics sampler enabled must commit bit-identical results.
  auto run_once = [](obs::ObsSession* obs) {
    Star star = make_star(12, 7);
    KernelConfig cfg;
    cfg.end_time = 300;
    cfg.num_nodes = 3;
    cfg.network.latency_ns = 10000;
    cfg.network.send_overhead_ns = 500;
    cfg.gvt_interval_us = 500;
    cfg.obs = obs;
    std::vector<std::uint32_t> node_of(13);
    for (LpId i = 0; i < 13; ++i) node_of[i] = i % 3;
    Kernel kernel(star.lps, node_of, cfg);
    return kernel.run();
  };

  const RunStats off = run_once(nullptr);

  obs::ObsConfig ocfg;
  ocfg.trace = true;
  ocfg.metrics_interval_us = 1000;
  obs::ObsSession session(3, ocfg);
  session.start_sampling();
  const RunStats on = run_once(&session);
  session.stop_sampling();

  ASSERT_EQ(on.final_states.size(), off.final_states.size());
  for (std::size_t i = 0; i < off.final_states.size(); ++i) {
    EXPECT_EQ(on.final_states[i], off.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(on.totals.events_committed, off.totals.events_committed);
  // And the session actually observed the run.
  std::uint64_t recorded = 0;
  for (std::uint32_t n = 0; n < 3; ++n) {
    recorded += session.ring(n)->recorded();
  }
  EXPECT_GT(recorded, 0u);
}

TEST(KernelMatrixExtras, RepeatedRunsAreStable) {
  // Thread interleavings differ between runs; committed results must not.
  for (int rep = 0; rep < 3; ++rep) {
    Star star = make_star(10, 7);
    KernelConfig cfg;
    cfg.end_time = 300;
    cfg.num_nodes = 4;
    cfg.network.latency_ns = 15000;
    std::vector<std::uint32_t> node_of(11);
    for (LpId i = 0; i < 11; ++i) node_of[i] = i % 4;
    Kernel kernel(star.lps, node_of, cfg);
    const RunStats out = kernel.run();
    static std::uint64_t first_checksum = 0;
    if (rep == 0) first_checksum = out.final_states[0].b;
    EXPECT_EQ(out.final_states[0].b, first_checksum);
  }
}

}  // namespace
}  // namespace pls::warped
