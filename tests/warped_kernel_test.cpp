// End-to-end tests of the threaded Time Warp kernel on small hand-built LP
// systems: determinism across node counts, accounting invariants, network
// model, optimism throttle, periodic state saving and the OOM guard.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "warped/kernel.hpp"

namespace pls::warped {
namespace {

/// Ring LP: every `period` it increments a counter and passes a token to
/// the next LP in the ring; the token bumps a second counter.  Fully
/// deterministic, with constant cross-LP traffic (cross-node when the ring
/// is split), which provokes rollbacks at small periods.
class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, SimTime period) : next_(next), period_(period) {}

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) tick = true;
      else s.b += e.value;  // token received
    }
    if (!tick) return;
    s.a += 1;
    if (ctx.now() + 1 <= ctx.end_time()) {
      ctx.send(next_, ctx.now() + 1, 0, s.a);
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId next_;
  SimTime period_;
};

struct Ring {
  std::vector<std::unique_ptr<RingLp>> owners;
  std::vector<LogicalProcess*> lps;
};

Ring make_ring(std::size_t n, SimTime period) {
  Ring r;
  for (LpId i = 0; i < n; ++i) {
    r.owners.push_back(
        std::make_unique<RingLp>(static_cast<LpId>((i + 1) % n), period));
  }
  for (auto& o : r.owners) r.lps.push_back(o.get());
  return r;
}

std::vector<std::uint32_t> round_robin(std::size_t n, std::uint32_t k) {
  std::vector<std::uint32_t> map(n);
  for (std::size_t i = 0; i < n; ++i) map[i] = i % k;
  return map;
}

RunStats run_ring(std::size_t n, std::uint32_t nodes, KernelConfig cfg) {
  Ring r = make_ring(n, 5);
  cfg.num_nodes = nodes;
  Kernel kernel(r.lps, round_robin(n, nodes), cfg);
  return kernel.run();
}

TEST(Kernel, SingleLpSelfTicksToCompletion) {
  Ring r = make_ring(1, 5);
  KernelConfig cfg;
  cfg.end_time = 100;
  Kernel kernel(r.lps, {0}, cfg);
  const RunStats out = kernel.run();
  // Ticks at 5,10,...,100 = 20 ticks; self-token arrives tick+1.
  EXPECT_EQ(out.final_states[0].a, 20u);
  EXPECT_EQ(out.final_gvt, kEndOfTime);
  EXPECT_FALSE(out.out_of_memory);
  EXPECT_GT(out.gvt_cycles, 0u);
}

TEST(Kernel, MultiNodeMatchesSingleNode) {
  KernelConfig cfg;
  cfg.end_time = 300;
  const RunStats ref = run_ring(12, 1, cfg);
  for (std::uint32_t nodes : {2u, 3u, 4u}) {
    const RunStats out = run_ring(12, nodes, cfg);
    ASSERT_EQ(out.final_states.size(), ref.final_states.size());
    for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
      EXPECT_EQ(out.final_states[i], ref.final_states[i])
          << "LP " << i << " at nodes=" << nodes;
    }
    EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed)
        << "nodes=" << nodes;
  }
}

TEST(Kernel, AccountingInvariantProcessedEqualsCommittedPlusRolledBack) {
  KernelConfig cfg;
  cfg.end_time = 400;
  for (std::uint32_t nodes : {1u, 2u, 4u}) {
    const RunStats out = run_ring(16, nodes, cfg);
    EXPECT_EQ(out.totals.events_processed,
              out.totals.events_committed + out.totals.events_rolled_back)
        << "nodes=" << nodes;
  }
}

TEST(Kernel, InterNodeMessagesOnlyWhenSplit) {
  KernelConfig cfg;
  cfg.end_time = 200;
  const RunStats one = run_ring(8, 1, cfg);
  EXPECT_EQ(one.totals.inter_node_messages, 0u);
  EXPECT_GT(one.totals.intra_node_events, 0u);

  const RunStats four = run_ring(8, 4, cfg);
  EXPECT_GT(four.totals.inter_node_messages, 0u);
}

TEST(Kernel, NetworkModelDelaysDelivery) {
  KernelConfig cfg;
  cfg.end_time = 200;
  cfg.network.latency_ns = 100000;  // 100 us
  cfg.network.send_overhead_ns = 1000;
  const RunStats out = run_ring(8, 2, cfg);
  // Correctness unaffected by latency.
  const RunStats ref = run_ring(8, 1, KernelConfig{.end_time = 200});
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]);
  }
}

TEST(Kernel, PeriodicStateSavingMatchesEveryEvent) {
  KernelConfig every;
  every.end_time = 300;
  const RunStats ref = run_ring(10, 2, every);

  KernelConfig periodic;
  periodic.end_time = 300;
  periodic.state_period = 4;
  const RunStats out = run_ring(10, 2, periodic);
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed);
}

TEST(Kernel, OptimismWindowStillCorrect) {
  KernelConfig cfg;
  cfg.end_time = 300;
  // Explicitly fixed: the default mode is adaptive, where optimism_window
  // is only the initial value — this test covers the hard-bounded path.
  cfg.throttle.mode = ThrottleMode::kFixed;
  cfg.optimism_window = 20;
  const RunStats out = run_ring(10, 3, cfg);
  const RunStats ref = run_ring(10, 1, KernelConfig{.end_time = 300});
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]);
  }
}

TEST(Kernel, OutOfMemoryGuardAborts) {
  KernelConfig cfg;
  cfg.end_time = 1000000;  // would run a long time
  cfg.max_live_entries_per_node = 16;  // absurdly small
  cfg.gvt_interval_us = 200;
  const RunStats out = run_ring(12, 2, cfg);
  EXPECT_TRUE(out.out_of_memory);
}

TEST(Kernel, RejectsBadConfiguration) {
  Ring r = make_ring(4, 5);
  EXPECT_THROW(Kernel(r.lps, {0, 0, 0}, KernelConfig{}), util::CheckError);
  EXPECT_THROW(Kernel(r.lps, {0, 0, 0, 9}, KernelConfig{}),
               util::CheckError);
  EXPECT_THROW(
      Kernel(std::vector<LogicalProcess*>{}, {}, KernelConfig{}),
      util::CheckError);
}

TEST(Kernel, RunIsSingleUse) {
  Ring r = make_ring(2, 5);
  KernelConfig cfg;
  cfg.end_time = 20;
  Kernel kernel(r.lps, {0, 0}, cfg);
  kernel.run();
  EXPECT_THROW(kernel.run(), util::CheckError);
}

TEST(Kernel, EventCostSlowsButStaysCorrect) {
  KernelConfig cfg;
  cfg.end_time = 100;
  cfg.event_cost_ns = 2000;
  const RunStats out = run_ring(6, 2, cfg);
  const RunStats ref = run_ring(6, 1, KernelConfig{.end_time = 100});
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]);
  }
}

TEST(Kernel, PerNodeStatsSumToTotals) {
  KernelConfig cfg;
  cfg.end_time = 300;
  const RunStats out = run_ring(12, 3, cfg);
  NodeStats sum;
  for (const auto& ns : out.per_node) sum.merge(ns);
  EXPECT_EQ(sum.events_committed, out.totals.events_committed);
  EXPECT_EQ(sum.events_processed, out.totals.events_processed);
  EXPECT_EQ(sum.inter_node_messages, out.totals.inter_node_messages);
  EXPECT_EQ(sum.primary_rollbacks, out.totals.primary_rollbacks);
}

}  // namespace
}  // namespace pls::warped
