// Deterministic unit tests for the Time Warp rollback protocol in
// LpRuntime: queue discipline, batching, straggler rollback, anti-message
// annihilation, secondary rollback, output cancellation, coast-forward
// replay under periodic state saving, fossil collection and finalize.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "warped/lp_runtime.hpp"

namespace pls::warped {
namespace {

/// Minimal behaviour object (LpRuntime never calls it in these tests).
class NullLp final : public LogicalProcess {
 public:
  void init(Context&) override {}
  void execute(Context&, EventBatch) override {}
};

Event ev(SimTime recv, LpId target, LpId sender, std::uint64_t id,
         SimTime send = 0, std::uint32_t port = 0) {
  Event e;
  e.recv_time = recv;
  e.send_time = send;
  e.target = target;
  e.sender = sender;
  e.port = port;
  e.id = id;
  e.sign = Sign::kPositive;
  return e;
}

Event anti_of(const Event& e) {
  Event a = e;
  a.sign = Sign::kNegative;
  return a;
}

/// Process the next batch: state is bumped so snapshots are distinguishable.
void process_next(LpRuntime& rt) {
  SimTime t = 0;
  const EventBatch batch = rt.begin_batch(t);
  rt.state().a += batch.size();  // deterministic, observable state change
  rt.state().b = t;
  rt.commit_batch(t, batch.size());
}

TEST(LpRuntime, InsertKeepsQueueSortedAndBatchesByTime) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(10, 0, 1, 1));
  rt.insert(ev(5, 0, 1, 2));
  rt.insert(ev(10, 0, 2, 3));
  EXPECT_EQ(rt.next_time(), 5u);

  SimTime t = 0;
  EventBatch batch = rt.begin_batch(t);
  EXPECT_EQ(t, 5u);
  EXPECT_EQ(batch.size(), 1u);
  rt.commit_batch(5, 1);

  batch = rt.begin_batch(t);
  EXPECT_EQ(t, 10u);
  EXPECT_EQ(batch.size(), 2u);  // both events at t=10 in one batch
}

TEST(LpRuntime, NoUnprocessedMeansEndOfTime) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  EXPECT_FALSE(rt.has_unprocessed());
  EXPECT_EQ(rt.next_time(), kEndOfTime);
  EXPECT_EQ(rt.gvt_min_time(), kEndOfTime);
}

TEST(LpRuntime, SnapshotAfterEveryBatchByDefault) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(5, 0, 1, 1));
  rt.insert(ev(10, 0, 1, 2));
  process_next(rt);
  process_next(rt);
  ASSERT_EQ(rt.snapshots().size(), 2u);
  EXPECT_EQ(rt.snapshots()[0].time, 5u);
  EXPECT_EQ(rt.snapshots()[1].time, 10u);
  EXPECT_EQ(rt.last_processed(), 10u);
}

TEST(LpRuntime, StragglerTriggersPrimaryRollback) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(5, 0, 1, 1));
  rt.insert(ev(10, 0, 1, 2));
  process_next(rt);  // t=5, state.a=1
  process_next(rt);  // t=10, state.a=2

  const auto res = rt.insert(ev(7, 0, 2, 3));
  EXPECT_TRUE(res.rolled_back);
  EXPECT_FALSE(res.secondary);
  EXPECT_EQ(res.rollback_time, 7u);
  EXPECT_EQ(res.unprocessed_events, 1u);  // the t=10 event
  // State restored to the post-t=5 snapshot.
  EXPECT_EQ(rt.state().a, 1u);
  EXPECT_EQ(rt.state().b, 5u);
  EXPECT_EQ(rt.last_processed(), 5u);
  EXPECT_EQ(rt.next_time(), 7u);
  EXPECT_EQ(rt.events_rolled_back(), 1u);

  // Reprocessing works through the straggler and beyond.
  process_next(rt);  // t=7
  process_next(rt);  // t=10 again
  EXPECT_EQ(rt.state().a, 3u);
  EXPECT_EQ(rt.last_processed(), 10u);
}

TEST(LpRuntime, EqualTimeStragglerRollsBackThatBatch) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(5, 0, 1, 1));
  process_next(rt);
  const auto res = rt.insert(ev(5, 0, 2, 2));
  EXPECT_TRUE(res.rolled_back);
  EXPECT_EQ(res.rollback_time, 5u);
  EXPECT_EQ(rt.state().a, 0u);  // back to the initial state
  SimTime t = 0;
  const EventBatch batch = rt.begin_batch(t);
  EXPECT_EQ(t, 5u);
  EXPECT_EQ(batch.size(), 2u);  // both events re-executed together
}

TEST(LpRuntime, RollbackCancelsOutputsAtOrAfterBoundary) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(5, 0, 1, 1));
  rt.insert(ev(10, 0, 1, 2));
  process_next(rt);
  rt.record_output(ev(6, 9, 0, 100, /*send=*/5));  // sent while at t=5
  process_next(rt);
  rt.record_output(ev(11, 9, 0, 101, /*send=*/10));  // sent while at t=10
  rt.record_output(ev(12, 8, 0, 102, /*send=*/10));

  const auto res = rt.insert(ev(7, 0, 2, 3));
  ASSERT_TRUE(res.rolled_back);
  // Outputs sent at t=10 >= 7 are cancelled; the t=5 output survives.
  ASSERT_EQ(res.antis.size(), 2u);
  EXPECT_EQ(res.antis[0].id, 101u);
  EXPECT_EQ(res.antis[0].sign, Sign::kNegative);
  EXPECT_EQ(res.antis[1].id, 102u);
  ASSERT_EQ(rt.output_queue().size(), 1u);
  EXPECT_EQ(rt.output_queue()[0].id, 100u);
}

TEST(LpRuntime, AntiForUnprocessedAnnihilatesSilently) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  const Event pos = ev(10, 0, 1, 7);
  rt.insert(pos);
  const auto res = rt.insert(anti_of(pos));
  EXPECT_FALSE(res.rolled_back);
  EXPECT_FALSE(rt.has_unprocessed());
  EXPECT_TRUE(rt.input_queue().empty());
}

TEST(LpRuntime, AntiForProcessedCausesSecondaryRollback) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  const Event pos = ev(5, 0, 1, 7);
  rt.insert(pos);
  rt.insert(ev(9, 0, 1, 8));
  process_next(rt);
  process_next(rt);

  const auto res = rt.insert(anti_of(pos));
  EXPECT_TRUE(res.rolled_back);
  EXPECT_TRUE(res.secondary);
  EXPECT_EQ(res.rollback_time, 5u);
  // The annihilated event is gone; only the t=9 event remains, pending.
  ASSERT_EQ(rt.input_queue().size(), 1u);
  EXPECT_EQ(rt.input_queue()[0].recv_time, 9u);
  EXPECT_EQ(rt.processed_count(), 0u);
  EXPECT_EQ(rt.state().a, 0u);  // back to the initial state
}

TEST(LpRuntime, AntiBeforePositiveIsStashed) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  const Event pos = ev(10, 0, 1, 7);
  const auto r1 = rt.insert(anti_of(pos));
  EXPECT_FALSE(r1.rolled_back);
  const auto r2 = rt.insert(pos);
  EXPECT_FALSE(r2.rolled_back);
  EXPECT_TRUE(rt.input_queue().empty());  // mutual annihilation
}

TEST(LpRuntime, AntiOnlyMatchesSameSenderAndId) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(10, 0, 1, 7));
  Event other = ev(10, 0, 2, 7);  // same id, different sender
  rt.insert(anti_of(other));
  EXPECT_EQ(rt.input_queue().size(), 1u);  // positive survived
}

TEST(LpRuntime, RollbackToTimeZeroForbidden) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(0, 0, 1, 1));  // init-phase event at t=0
  process_next(rt);
  // A straggler at t=0 would require cancelling init-phase sends.
  EXPECT_THROW(rt.insert(ev(0, 0, 2, 2)), util::CheckError);
}

TEST(LpRuntime, FossilCollectCommitsAndPrunes) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    rt.insert(ev(i * 10, 0, 1, i));
  }
  for (int i = 0; i < 5; ++i) process_next(rt);
  rt.record_output(ev(21, 9, 0, 100, /*send=*/20));
  rt.record_output(ev(41, 9, 0, 101, /*send=*/40));

  const auto res = rt.fossil_collect(35);
  // Snapshot base = t=30 (newest < 35); events <= 30 commit.
  EXPECT_EQ(res.committed_events, 3u);
  EXPECT_EQ(rt.input_queue().size(), 2u);
  // Snapshots: base t=30 plus t=40, t=50.
  ASSERT_EQ(rt.snapshots().size(), 3u);
  EXPECT_EQ(rt.snapshots()[0].time, 30u);
  // Output sent at t=20 < GVT pruned; t=40 output kept.
  ASSERT_EQ(rt.output_queue().size(), 1u);
  EXPECT_EQ(rt.output_queue()[0].id, 101u);

  // Rollback to a time at GVT still works off the kept base.
  const auto rb = rt.insert(ev(36, 0, 2, 50));
  EXPECT_TRUE(rb.rolled_back);
  EXPECT_EQ(rt.state().b, 30u);
}

TEST(LpRuntime, FossilCollectAtZeroIsNoop) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(5, 0, 1, 1));
  process_next(rt);
  EXPECT_EQ(rt.fossil_collect(0).committed_events, 0u);
  EXPECT_EQ(rt.input_queue().size(), 1u);
}

TEST(LpRuntime, FinalizeCommitsTrailingBatches) {
  NullLp lp;
  LpRuntime rt(0, &lp, /*state_period=*/3);
  for (std::uint64_t i = 1; i <= 4; ++i) rt.insert(ev(i * 10, 0, 1, i));
  for (int i = 0; i < 4; ++i) process_next(rt);
  // Only one snapshot (after batch 3); fossil at EOT keeps events beyond it.
  const auto fossil = rt.fossil_collect(kEndOfTime);
  EXPECT_EQ(fossil.committed_events, 3u);
  EXPECT_EQ(rt.finalize(), 1u);
  EXPECT_TRUE(rt.input_queue().empty());
}

// ---- periodic state saving & coast-forward replay -------------------------

TEST(LpRuntime, PeriodicSavingSnapshotsEveryNth) {
  NullLp lp;
  LpRuntime rt(0, &lp, /*state_period=*/2);
  for (std::uint64_t i = 1; i <= 5; ++i) rt.insert(ev(i * 10, 0, 1, i));
  for (int i = 0; i < 5; ++i) process_next(rt);
  ASSERT_EQ(rt.snapshots().size(), 2u);
  EXPECT_EQ(rt.snapshots()[0].time, 20u);
  EXPECT_EQ(rt.snapshots()[1].time, 40u);
}

TEST(LpRuntime, ReplayWindowAfterRollbackWithPeriodicSaving) {
  NullLp lp;
  LpRuntime rt(0, &lp, /*state_period=*/3);
  for (std::uint64_t i = 1; i <= 4; ++i) rt.insert(ev(i * 10, 0, 1, i));
  for (int i = 0; i < 4; ++i) process_next(rt);  // snapshot only at t=30
  rt.record_output(ev(15, 9, 0, 100, /*send=*/10));
  rt.record_output(ev(45, 9, 0, 101, /*send=*/40));

  // Straggler at t=35: restore snapshot t=30, cancel only outputs >= 35.
  const auto res = rt.insert(ev(35, 0, 2, 9));
  ASSERT_TRUE(res.rolled_back);
  ASSERT_EQ(res.antis.size(), 1u);
  EXPECT_EQ(res.antis[0].id, 101u);
  EXPECT_EQ(rt.last_processed(), 30u);
  // Batches in (30, 35) — none here — would replay muted; t=35 is live.
  EXPECT_FALSE(rt.in_replay(35));

  // Now a deeper straggler at t=25: snapshot base is the initial state,
  // and batches at 10 and 20 become a muted replay window.
  const auto res2 = rt.insert(ev(25, 0, 2, 10));
  ASSERT_TRUE(res2.rolled_back);
  EXPECT_EQ(rt.last_processed(), 0u);
  EXPECT_TRUE(rt.in_replay(10));
  EXPECT_TRUE(rt.in_replay(20));
  EXPECT_FALSE(rt.in_replay(25));
  // The t=10 output survived (send_time 10 < 25): replay must not resend.
  ASSERT_EQ(rt.output_queue().size(), 1u);
  EXPECT_EQ(rt.output_queue()[0].id, 100u);
}

TEST(LpRuntime, PositiveArrivingInsideReplayWindowForcesRollback) {
  NullLp lp;
  LpRuntime rt(0, &lp, /*state_period=*/4);
  for (std::uint64_t i = 1; i <= 4; ++i) rt.insert(ev(i * 10, 0, 1, i));
  for (int i = 0; i < 4; ++i) process_next(rt);  // snapshot at t=40 only
  rt.record_output(ev(26, 9, 0, 100, /*send=*/25));  // would be stale

  // Hmm: outputs at send=25 require a processed batch at 25; adjust by
  // rolling back to 35 first to open a replay window (30, 35).
  rt.insert(ev(35, 0, 2, 9));          // rollback to 35; replay < 35
  EXPECT_TRUE(rt.in_replay(30));
  // While replaying, a brand-new positive at t=20 (inside the window whose
  // outputs are still live) must rollback again, not just insert.
  const auto res = rt.insert(ev(20, 0, 3, 11));
  EXPECT_TRUE(res.rolled_back);
  EXPECT_EQ(res.rollback_time, 20u);
}

TEST(LpRuntime, EventIdsMonotonicAcrossRollbacks) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  const auto a = rt.alloc_event_id();
  const auto b = rt.alloc_event_id();
  EXPECT_LT(a, b);
  rt.insert(ev(5, 0, 1, 1));
  process_next(rt);
  rt.insert(ev(5, 0, 2, 2));  // rollback
  EXPECT_GT(rt.alloc_event_id(), b);
}

TEST(LpRuntime, ProcessedCountsTrackReexecution) {
  NullLp lp;
  LpRuntime rt(0, &lp);
  rt.insert(ev(5, 0, 1, 1));
  process_next(rt);
  rt.insert(ev(3, 0, 1, 2));  // rollback; both pending again
  process_next(rt);           // t=3
  process_next(rt);           // t=5 re-executed
  EXPECT_EQ(rt.events_processed(), 3u);  // 1 + 2 after replaying
  EXPECT_EQ(rt.events_rolled_back(), 1u);
}

TEST(LpRuntime, InsertForWrongTargetRejected) {
  NullLp lp;
  LpRuntime rt(3, &lp);
  EXPECT_THROW(rt.insert(ev(5, /*target=*/4, 1, 1)), util::CheckError);
}

}  // namespace
}  // namespace pls::warped
