// Live LP migration (dynamic repartitioning): a rotating repartition hook
// forces every LP — including the heavily-loaded hub — to migrate between
// nodes repeatedly mid-run.  The committed results must be bit-identical
// to a run with no migration at all, the Time Warp accounting identities
// must survive, and the per-LP counters must travel with their LPs.

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "warped/kernel.hpp"

namespace pls::warped {
namespace {

/// Same hub-and-spokes system as warped_kernel_matrix_test: the hub
/// broadcasts a round counter, every spoke echoes a transform back, the
/// hub folds echoes into a checksum.  Every edge crosses the hub, so any
/// migration of hub or spokes rewires live traffic.
class HubLp final : public LogicalProcess {
 public:
  HubLp(LpId first_spoke, LpId num_spokes, SimTime period)
      : first_(first_spoke), n_(num_spokes), period_(period) {}

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) tick = true;
      else s.b = s.b * 31 + e.value;
    }
    if (!tick) return;
    s.a += 1;
    if (ctx.now() + 1 <= ctx.end_time()) {
      for (LpId i = 0; i < n_; ++i) {
        ctx.send(first_ + i, ctx.now() + 1, 0, s.a + i);
      }
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId first_;
  LpId n_;
  SimTime period_;
};

class SpokeLp final : public LogicalProcess {
 public:
  explicit SpokeLp(LpId hub) : hub_(hub) {}

  void init(Context&) override {}

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      if (e.port == kTickPort) continue;
      s.a += e.value;
      if (ctx.now() + 1 <= ctx.end_time()) {
        ctx.send(hub_, ctx.now() + 1, 0, s.a ^ (s.a >> 3));
      }
    }
  }

 private:
  LpId hub_;
};

struct Star {
  std::vector<std::unique_ptr<LogicalProcess>> owners;
  std::vector<LogicalProcess*> lps;
};

Star make_star(LpId spokes, SimTime period) {
  Star s;
  s.owners.push_back(std::make_unique<HubLp>(1, spokes, period));
  for (LpId i = 0; i < spokes; ++i) {
    s.owners.push_back(std::make_unique<SpokeLp>(0));
  }
  for (auto& o : s.owners) s.lps.push_back(o.get());
  return s;
}

RunStats run_star(std::uint32_t nodes, bool migrate, std::uint64_t* plans) {
  constexpr LpId kSpokes = 14;
  constexpr SimTime kEnd = 400;
  Star star = make_star(kSpokes, 7);
  KernelConfig cfg;
  cfg.end_time = kEnd;
  cfg.num_nodes = nodes;
  cfg.network.latency_ns = 15000;
  cfg.network.send_overhead_ns = 500;
  cfg.gvt_interval_us = 500;
  if (migrate) {
    // Rotate every LP to the next node at every epoch: the harshest
    // possible plan (all LPs move, every time, hub included).
    cfg.repartition_interval = 2;
    cfg.repartition_hook =
        [nodes](const RepartitionRequest& req) -> std::vector<std::uint32_t> {
      std::vector<std::uint32_t> next(req.current.size());
      for (std::size_t i = 0; i < next.size(); ++i) {
        next[i] = (req.current[i] + 1) % nodes;
      }
      return next;
    };
  }
  std::vector<std::uint32_t> node_of(kSpokes + 1);
  for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % nodes;
  Kernel kernel(star.lps, node_of, cfg);
  RunStats out = kernel.run();
  if (plans != nullptr) *plans = out.repartitions;
  return out;
}

TEST(WarpedMigration, RotatingMigrationPreservesCommittedResults) {
  const RunStats ref = run_star(4, /*migrate=*/false, nullptr);
  ASSERT_EQ(ref.final_gvt, kEndOfTime);

  // Interleavings differ run to run; committed results must not.
  for (int rep = 0; rep < 3; ++rep) {
    std::uint64_t plans = 0;
    const RunStats out = run_star(4, /*migrate=*/true, &plans);

    // The rotating hook must actually have exercised live migration.
    EXPECT_GT(plans, 0u) << "rep " << rep;
    EXPECT_GT(out.totals.lps_migrated_out, 0u) << "rep " << rep;
    // Every shipped package was installed (none lost in teardown).
    EXPECT_EQ(out.totals.lps_migrated_out, out.totals.lps_migrated_in)
        << "rep " << rep;

    // Bit-identical committed state and committed-event totals.
    ASSERT_EQ(out.final_states.size(), ref.final_states.size());
    for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
      EXPECT_EQ(out.final_states[i], ref.final_states[i])
          << "LP " << i << " rep " << rep;
    }
    EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed)
        << "rep " << rep;

    // Time Warp accounting identities hold across migrations.
    EXPECT_EQ(out.totals.events_processed,
              out.totals.events_committed + out.totals.events_rolled_back)
        << "rep " << rep;
    EXPECT_EQ(out.final_gvt, kEndOfTime);
    EXPECT_FALSE(out.out_of_memory);
    EXPECT_FALSE(out.stalled);

    // Per-LP counters travelled with their LPs: summing them reproduces
    // the node totals exactly.
    std::uint64_t per_lp_committed = 0;
    for (const auto& lp : out.per_lp) per_lp_committed += lp.events_committed;
    EXPECT_EQ(per_lp_committed, out.totals.events_committed) << "rep " << rep;
  }
}

// Masked-word (lanes > 1) star: events carry 64-bit value words plus
// per-lane change masks, and the wide LpState::w words must travel inside
// migration packages intact.  Mirrors the batched-stimulus event dialect
// of src/logicsim (masked application, mask-folding checksums).
class MaskedHubLp final : public LogicalProcess {
 public:
  MaskedHubLp(LpId first_spoke, LpId num_spokes, SimTime period)
      : first_(first_spoke), n_(num_spokes), period_(period) {}

  LpState initial_state() const override {
    LpState s;
    s.w.assign(1, 0);
    return s;
  }

  void init(Context& ctx) override {
    if (period_ <= ctx.end_time()) ctx.schedule_self(period_);
  }

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    bool tick = false;
    for (const auto& e : batch) {
      if (e.port == kTickPort) {
        tick = true;
        continue;
      }
      s.b = s.b * 31 + (e.value ^ e.mask);
      s.w[0] ^= e.value & e.mask;
    }
    if (!tick) return;
    s.a += 1;
    if (ctx.now() + 1 <= ctx.end_time()) {
      const std::uint64_t v = s.a * 0x9e3779b97f4a7c15ULL;
      for (LpId i = 0; i < n_; ++i) {
        ctx.send(first_ + i, ctx.now() + 1, 0, v + i,
                 std::rotl(v | 1, static_cast<int>(i)));
      }
    }
    if (ctx.now() + period_ <= ctx.end_time()) {
      ctx.schedule_self(ctx.now() + period_);
    }
  }

 private:
  LpId first_;
  LpId n_;
  SimTime period_;
};

class MaskedSpokeLp final : public LogicalProcess {
 public:
  explicit MaskedSpokeLp(LpId hub) : hub_(hub) {}

  LpState initial_state() const override {
    LpState s;
    s.w.assign(1, 0);
    return s;
  }

  void init(Context&) override {}

  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      if (e.port == kTickPort) continue;
      s.a = (s.a & ~e.mask) | (e.value & e.mask);
      s.w[0] ^= e.mask;
      if (ctx.now() + 1 <= ctx.end_time()) {
        ctx.send(hub_, ctx.now() + 1, 0, s.a ^ (s.a >> 3),
                 std::rotl(e.mask, 1) | 1);
      }
    }
  }

 private:
  LpId hub_;
};

Star make_masked_star(LpId spokes, SimTime period) {
  Star s;
  s.owners.push_back(std::make_unique<MaskedHubLp>(1, spokes, period));
  for (LpId i = 0; i < spokes; ++i) {
    s.owners.push_back(std::make_unique<MaskedSpokeLp>(0));
  }
  for (auto& o : s.owners) s.lps.push_back(o.get());
  return s;
}

TEST(WarpedMigration, RotatingMigrationPreservesMaskedWordResults) {
  constexpr LpId kSpokes = 14;
  constexpr SimTime kEnd = 400;

  auto run_masked = [&](bool migrate) {
    Star star = make_masked_star(kSpokes, 7);
    KernelConfig cfg;
    cfg.end_time = kEnd;
    cfg.num_nodes = 4;
    cfg.network.latency_ns = 15000;
    cfg.network.send_overhead_ns = 500;
    cfg.gvt_interval_us = 500;
    if (migrate) {
      cfg.repartition_interval = 2;
      cfg.repartition_hook =
          [](const RepartitionRequest& req) -> std::vector<std::uint32_t> {
        std::vector<std::uint32_t> next(req.current.size());
        for (std::size_t i = 0; i < next.size(); ++i) {
          next[i] = (req.current[i] + 1) % 4;
        }
        return next;
      };
    }
    std::vector<std::uint32_t> node_of(kSpokes + 1);
    for (LpId i = 0; i <= kSpokes; ++i) node_of[i] = i % 4;
    Kernel kernel(star.lps, node_of, cfg);
    return kernel.run();
  };

  const RunStats ref = run_masked(/*migrate=*/false);
  ASSERT_EQ(ref.final_gvt, kEndOfTime);
  // The wide words carry real traffic worth migrating.
  EXPECT_NE(ref.final_states[0].b, 0u);
  EXPECT_NE(ref.final_states[1].w.at(0), 0u);

  const RunStats out = run_masked(/*migrate=*/true);
  EXPECT_GT(out.repartitions, 0u);
  EXPECT_GT(out.totals.lps_migrated_out, 0u);
  EXPECT_EQ(out.totals.lps_migrated_out, out.totals.lps_migrated_in);

  // Bit-identical committed state — including every LpState::w lane word
  // shipped inside a migration package (operator== covers w).
  ASSERT_EQ(out.final_states.size(), ref.final_states.size());
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed);
  EXPECT_EQ(out.totals.events_processed,
            out.totals.events_committed + out.totals.events_rolled_back);
  EXPECT_EQ(out.final_gvt, kEndOfTime);
  EXPECT_FALSE(out.out_of_memory);
}

TEST(WarpedMigration, TwoNodeMigrationMatchesSingleNodeReference) {
  Star ref_star = make_star(10, 7);
  KernelConfig ref_cfg;
  ref_cfg.end_time = 300;
  Kernel ref_kernel(ref_star.lps, std::vector<std::uint32_t>(11, 0), ref_cfg);
  const RunStats ref = ref_kernel.run();

  std::uint64_t plans = 0;
  Star star = make_star(10, 7);
  KernelConfig cfg;
  cfg.end_time = 300;
  cfg.num_nodes = 2;
  cfg.network.latency_ns = 5000;
  cfg.gvt_interval_us = 500;
  cfg.repartition_interval = 1;  // every completed round
  cfg.repartition_hook =
      [](const RepartitionRequest& req) -> std::vector<std::uint32_t> {
    std::vector<std::uint32_t> next(req.current.size());
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = 1 - req.current[i];
    }
    return next;
  };
  std::vector<std::uint32_t> node_of(11);
  for (LpId i = 0; i < 11; ++i) node_of[i] = i % 2;
  Kernel kernel(star.lps, node_of, cfg);
  const RunStats out = kernel.run();
  plans = out.repartitions;

  EXPECT_GT(plans, 0u);
  ASSERT_EQ(out.final_states.size(), ref.final_states.size());
  for (std::size_t i = 0; i < ref.final_states.size(); ++i) {
    EXPECT_EQ(out.final_states[i], ref.final_states[i]) << "LP " << i;
  }
  EXPECT_EQ(out.totals.events_committed, ref.totals.events_committed);
}

TEST(WarpedMigration, NullHookAndZeroIntervalStayStatic) {
  // interval > 0 with no hook, and hook with interval 0: both inert.
  for (int variant = 0; variant < 2; ++variant) {
    Star star = make_star(6, 7);
    KernelConfig cfg;
    cfg.end_time = 200;
    cfg.num_nodes = 2;
    if (variant == 0) {
      cfg.repartition_interval = 2;  // no hook
    } else {
      cfg.repartition_hook = [](const RepartitionRequest& req) {
        return std::vector<std::uint32_t>(req.current.size(), 0);
      };  // no interval
    }
    std::vector<std::uint32_t> node_of(7);
    for (LpId i = 0; i < 7; ++i) node_of[i] = i % 2;
    Kernel kernel(star.lps, node_of, cfg);
    const RunStats out = kernel.run();
    EXPECT_EQ(out.repartitions, 0u);
    EXPECT_EQ(out.totals.lps_migrated_out, 0u);
    EXPECT_EQ(out.final_gvt, kEndOfTime);
  }
}

}  // namespace
}  // namespace pls::warped
