// Adaptive optimism throttle: the controller must shrink under injected
// rollback storms, grow back when clean (including from starvation, where
// the sample is too thin to ever fill), respect its configured bounds in
// both directions — and the kernel's window arithmetic must saturate
// instead of wrapping when GVT approaches end-of-time.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "warped/kernel.hpp"
#include "warped/throttle.hpp"

namespace pls::warped {
namespace {

ThrottleConfig adaptive_cfg() {
  ThrottleConfig cfg;
  cfg.mode = ThrottleMode::kAdaptive;
  return cfg;
}

/// Runs the controller past any shrink cooldown so the next sample counts.
void drain_cooldown(OptimismThrottle& t, std::uint64_t& round) {
  const ThrottleConfig cfg;
  for (std::uint64_t i = 0; i <= cfg.shrink_cooldown_rounds; ++i) {
    t.on_round(++round);
  }
}

TEST(SaturatingAdd, ClampsAtEndOfTime) {
  EXPECT_EQ(saturating_add(0, 0), 0u);
  EXPECT_EQ(saturating_add(10, 20), 30u);
  EXPECT_EQ(saturating_add(kEndOfTime, 0), kEndOfTime);
  EXPECT_EQ(saturating_add(kEndOfTime, 5), kEndOfTime);
  EXPECT_EQ(saturating_add(5, kEndOfTime), kEndOfTime);
  EXPECT_EQ(saturating_add(kEndOfTime - 3, 3), kEndOfTime);
  EXPECT_EQ(saturating_add(kEndOfTime - 3, 4), kEndOfTime);
  EXPECT_EQ(saturating_add(kEndOfTime, kEndOfTime), kEndOfTime);
}

TEST(Throttle, UnlimitedModeNeverMoves) {
  ThrottleConfig cfg;
  cfg.mode = ThrottleMode::kUnlimited;
  OptimismThrottle t(cfg, 500);
  EXPECT_EQ(t.window(), kEndOfTime);
  for (std::uint64_t r = 1; r < 20; ++r) {
    t.note_executed(1000, 900);
    t.note_rollback(900);
    t.on_round(r);
  }
  EXPECT_EQ(t.window(), kEndOfTime);
  EXPECT_TRUE(t.trajectory().empty());
}

TEST(Throttle, FixedModeNeverMoves) {
  ThrottleConfig cfg;
  cfg.mode = ThrottleMode::kFixed;
  OptimismThrottle t(cfg, 500);
  EXPECT_EQ(t.window(), 500u);
  for (std::uint64_t r = 1; r < 20; ++r) {
    t.note_executed(1000, 499);
    t.note_rollback(900);
    t.on_round(r);
  }
  EXPECT_EQ(t.window(), 500u);
  // The historical optimism_window == 0 convention: fixed at unbounded.
  OptimismThrottle open(cfg, 0);
  EXPECT_EQ(open.window(), kEndOfTime);
}

TEST(Throttle, ShrinksUnderRollbackStorm) {
  OptimismThrottle t(adaptive_cfg(), 1000);
  ASSERT_EQ(t.window(), 1000u);
  // Half the executed work rolled back, speculated deep into the window.
  t.note_executed(100, 900);
  t.note_rollback(50);
  t.on_round(1);
  EXPECT_LT(t.window(), 1000u);
  EXPECT_EQ(t.summary().shrinks, 1u);
  ASSERT_EQ(t.trajectory().size(), 1u);
  EXPECT_EQ(t.trajectory()[0].direction, -1);
  EXPECT_DOUBLE_EQ(t.trajectory()[0].rollback_fraction, 0.5);
}

TEST(Throttle, DeepStormShrinksHarder) {
  OptimismThrottle shallow(adaptive_cfg(), 1024);
  shallow.note_executed(200, 1000);
  shallow.note_rollback(50);  // depth 50 <= deep_rollback_depth
  shallow.on_round(1);

  OptimismThrottle deep(adaptive_cfg(), 1024);
  deep.note_executed(200, 1000);
  deep.note_rollback(50);
  deep.note_rollback(100);  // one rollback deeper than deep_rollback_depth
  deep.on_round(1);

  EXPECT_LT(deep.window(), shallow.window());
}

TEST(Throttle, StragglerJitterDoesNotShrink) {
  // Heavy rollbacks whose speculation never reached the window region:
  // no reachable window prevents them, so the controller must hold, not
  // starve the node.
  OptimismThrottle t(adaptive_cfg(), 1000);
  t.note_executed(100, 20);  // lead far below window/2
  t.note_rollback(60);
  t.on_round(1);
  EXPECT_EQ(t.window(), 1000u);
  EXPECT_EQ(t.summary().shrinks, 0u);
}

TEST(Throttle, PersistentStormRespectsLowerBound) {
  ThrottleConfig cfg = adaptive_cfg();
  OptimismThrottle t(cfg, 4096);
  for (std::uint64_t r = 1; r < 200; ++r) {
    t.note_executed(100, 4000);
    t.note_rollback(90);
    t.on_round(r);
    ASSERT_GE(t.window(), cfg.min_window);
  }
  EXPECT_EQ(t.window(), cfg.min_window);
  EXPECT_EQ(t.summary().min_window_seen, cfg.min_window);
  EXPECT_GT(t.summary().shrinks, 1u);
}

TEST(Throttle, GrowsWhenCleanAndRespectsUpperBound) {
  ThrottleConfig cfg = adaptive_cfg();
  cfg.max_window = 4096;
  OptimismThrottle t(cfg, 64);
  std::uint64_t grows_seen = 0;
  for (std::uint64_t r = 1; r < 100; ++r) {
    t.note_executed(100, 32);
    t.on_round(r);
    ASSERT_LE(t.window(), cfg.max_window);
    grows_seen = t.summary().grows;
  }
  EXPECT_EQ(t.window(), cfg.max_window);
  EXPECT_GT(grows_seen, 0u);
  EXPECT_EQ(t.summary().shrinks, 0u);
}

TEST(Throttle, StarvedNodeGrowsOnThinSample) {
  ThrottleConfig cfg = adaptive_cfg();
  OptimismThrottle t(cfg, 64);
  // No executed events at all: the sample can never fill, yet the window
  // must still be able to grow (starvation is self-inflicted).
  std::uint64_t round = 0;
  for (std::uint64_t i = 0; i < 2 * cfg.max_rounds_per_decision; ++i) {
    t.on_round(++round);
  }
  EXPECT_GT(t.window(), 64u);
}

TEST(Throttle, GrowthTurnsAdditiveAboveStormThreshold) {
  OptimismThrottle t(adaptive_cfg(), 1000);
  std::uint64_t round = 0;
  // Storm at w=1000 marks the threshold and halves the window.
  t.note_executed(100, 990);
  t.note_rollback(60);
  t.on_round(++round);
  const SimTime after_shrink = t.window();
  ASSERT_EQ(after_shrink, 500u);
  drain_cooldown(t, round);

  // Clean growth: slow-start doubles only up to the threshold...
  t.note_executed(100, 100);
  t.on_round(++round);
  EXPECT_EQ(t.window(), 1000u);
  // ...then probes past it additively (1/8 per decision), far slower.
  t.note_executed(100, 100);
  t.on_round(++round);
  EXPECT_EQ(t.window(), 1000u + 1000u / 8);
}

// ---------------------------------------------------------------------------
// Kernel-level regression: window arithmetic near kEndOfTime.

/// Schedules its own events at virtual times within a few ticks of
/// kEndOfTime; any wrap in the kernel's GVT + window sum blocks the run.
class EndOfTimeLp final : public LogicalProcess {
 public:
  void init(Context& ctx) override {
    ctx.schedule_self(kEndOfTime - 10);
  }
  void execute(Context& ctx, EventBatch batch) override {
    LpState& s = ctx.state();
    for (const auto& e : batch) {
      (void)e;
      s.a += 1;
    }
    // Subtract, don't add: now + 4 itself wraps this close to kEndOfTime.
    if (ctx.now() <= ctx.end_time() - 4) ctx.schedule_self(ctx.now() + 4);
  }
};

TEST(Throttle, WindowDoesNotWrapNearEndOfTime) {
  // With the historical `gvt + window` wrap, GVT reaching ~kEndOfTime
  // collapses the window to a tiny value, the final events can never
  // execute, and the run only ends via the watchdog (stalled = true).
  std::vector<std::unique_ptr<LogicalProcess>> owners;
  std::vector<LogicalProcess*> lps;
  for (int i = 0; i < 2; ++i) {
    owners.push_back(std::make_unique<EndOfTimeLp>());
    lps.push_back(owners.back().get());
  }
  KernelConfig cfg;
  cfg.end_time = kEndOfTime - 2;
  cfg.throttle.mode = ThrottleMode::kFixed;
  cfg.optimism_window = 100;
  cfg.gvt_interval_us = 200;
  cfg.watchdog_timeout_ms = 5000;  // bounds the failure mode, not the fix
  Kernel kernel(lps, {0, 0}, cfg);
  const RunStats out = kernel.run();
  EXPECT_FALSE(out.stalled);
  EXPECT_EQ(out.final_gvt, kEndOfTime);
  for (const auto& s : out.final_states) EXPECT_EQ(s.a, 3u);
}

TEST(Throttle, AdaptiveRunReportsTrajectory) {
  // End-to-end: an adaptive run exposes per-node summaries + decisions.
  std::vector<std::unique_ptr<LogicalProcess>> owners;
  std::vector<LogicalProcess*> lps;
  for (int i = 0; i < 2; ++i) {
    owners.push_back(std::make_unique<EndOfTimeLp>());
    lps.push_back(owners.back().get());
  }
  KernelConfig cfg;
  cfg.num_nodes = 2;
  cfg.end_time = kEndOfTime - 2;
  cfg.gvt_interval_us = 200;
  Kernel kernel(lps, {0, 1}, cfg);
  const RunStats out = kernel.run();
  EXPECT_FALSE(out.stalled);
  ASSERT_EQ(out.throttle.size(), 2u);
  for (const auto& tr : out.throttle) {
    EXPECT_EQ(tr.summary.mode, ThrottleMode::kAdaptive);
    EXPECT_GE(tr.summary.final_window, ThrottleConfig{}.min_window);
  }
}

}  // namespace
}  // namespace pls::warped
