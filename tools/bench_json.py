#!/usr/bin/env python3
"""Convert a bench-harness CSV into a BENCH_*.json trajectory file.

The repo keeps machine-readable snapshots of the paper-reproduction
benches (BENCH_fig4.json / BENCH_fig6.json / BENCH_table2.json) so the
result trajectory is diffable across PRs; CI regenerates them from the
smoke run at a fixed --scale and uploads them as workflow artifacts.

Usage:
    bench_json.py <in.csv> <out.json> [key=value ...]

Extra key=value pairs are recorded under "config" (e.g. scale=0.1
throttle=adaptive,unlimited) so a snapshot documents how it was produced.
Numeric-looking cells are emitted as JSON numbers.
"""

import csv
import json
import sys


def _num(cell: str):
    try:
        return int(cell)
    except ValueError:
        try:
            return float(cell)
        except ValueError:
            return cell


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    in_csv, out_json = argv[1], argv[2]
    config = {}
    for pair in argv[3:]:
        key, _, value = pair.partition("=")
        config[key] = _num(value)

    with open(in_csv, newline="") as f:
        rows = [{k: _num(v) for k, v in row.items()}
                for row in csv.DictReader(f)]

    # Self-document the sweep dimensions: the distinct throttle / activity
    # / repartition modes present in the rows are summarized into config,
    # so a snapshot says whether (and how) it was activity-guided or
    # dynamically repartitioned without scanning rows.
    for dim in ("throttle", "activity", "repartition", "lanes"):
        key = f"{dim}_modes"
        seen = sorted({row[dim] for row in rows if dim in row})
        if seen and key not in config:
            config[key] = ",".join(str(s) for s in seen)

    # Migration totals: how much live LP migration the sweep performed
    # (0 everywhere for a purely static snapshot).
    for col in ("lps_migrated", "repartitions"):
        vals = [row[col] for row in rows
                if isinstance(row.get(col), (int, float))]
        if vals:
            config[f"total_{col}"] = round(sum(vals), 1)

    doc = {
        "bench": in_csv.rsplit("/", 1)[-1].removesuffix(".csv"),
        "config": config,
        "rows": rows,
    }
    with open(out_json, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"{out_json}: {len(rows)} rows")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
