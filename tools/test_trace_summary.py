#!/usr/bin/env python3
"""Pinned-input tests for trace_summary.py.

Feeds hand-built Chrome Trace Event files through the summarizer as a
subprocess and asserts on the printed report: the per-node phase
breakdown, the rollback-storm stripe (bucket counts and events-undone
total), the GVT percentile math against hand-computed values, drop
accounting, and the exit-1 contract on malformed input.

Run directly (python3 tools/test_trace_summary.py) or via ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "trace_summary.py")


def run_tool(path, *extra):
    return subprocess.run([sys.executable, TOOL, path, *extra],
                          capture_output=True, text=True)


def span(name, tid, ts, dur):
    return {"ph": "X", "name": name, "tid": tid, "pid": 0,
            "ts": ts, "dur": dur}


def instant(name, tid, ts, args=None):
    e = {"ph": "i", "name": name, "tid": tid, "pid": 0, "ts": ts}
    if args is not None:
        e["args"] = args
    return e


def counter(name, tid, ts, value):
    return {"ph": "C", "name": name, "tid": tid, "pid": 0, "ts": ts,
            "args": {"value": value}}


class TraceSummaryTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, trace, name="trace.json"):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(trace, f)
        return path

    def test_phase_breakdown_sums_and_percentages(self):
        trace = {"traceEvents": [
            span("execute", 0, 0, 3000),
            span("execute", 0, 5000, 1000),
            span("gvt", 0, 9000, 1000),
            span("execute", 1, 0, 500),
            instant("rollback", 1, 100, {"undone": 4}),
        ]}
        r = run_tool(self.write(trace))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("2 node(s)", r.stdout)
        # Node 0: execute 4000us of 5000us total = 80%, two spans.
        self.assertIn("node 0: 5.000ms recorded in spans", r.stdout)
        self.assertIn("execute", r.stdout)
        self.assertIn("80.0%", r.stdout)
        self.assertIn("x2", r.stdout)
        # Node 1's rollback shows up as an instant count.
        self.assertIn("node 1: 0.500ms recorded in spans", r.stdout)

    def test_rollback_stripe_buckets_and_undone_total(self):
        # Three rollbacks at t=0 and one at t=100 with --buckets 4 land in
        # buckets [3, 0, 0, 1]: peak 3 renders '#', the single one ':'.
        trace = {"traceEvents": [
            instant("rollback", 0, 0, {"undone": 5}),
            instant("rollback", 0, 0, {"undone": 5}),
            instant("rollback", 1, 0, {"undone": 5}),
            instant("rollback", 0, 100, {"undone": 2}),
        ]}
        r = run_tool(self.write(trace), "--buckets", "4")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("4 rollbacks", r.stdout)
        self.assertIn("[#  :]", r.stdout)
        self.assertIn("peak 3/bucket", r.stdout)
        self.assertIn("events undone total: 17", r.stdout)

    def test_gvt_percentiles_match_hand_computed_values(self):
        # Matched rounds with latencies 100, 200, 300, 400 us; round 9
        # never completes and the done-without-start round is ignored.
        events = []
        for rnd, (t0, dur) in enumerate([(0, 100), (1000, 200),
                                         (2000, 300), (3000, 400)]):
            events.append(instant("gvt_start", 0, t0, {"round": rnd}))
            events.append(instant("gvt_done", 0, t0 + dur, {"round": rnd}))
        events.append(instant("gvt_start", 0, 9000, {"round": 9}))
        events.append(instant("gvt_done", 0, 9500, {"round": 77}))
        events.append(counter("gvt", 0, 0, 0))
        events.append(counter("gvt", 0, 4000, 350))
        r = run_tool(self.write({"traceEvents": events}))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("4 completed with matched start", r.stdout)
        # Linear-interpolated percentiles over [100, 200, 300, 400]:
        # p50 = 250, p90 = 370, p99 = 397, max = 400.
        self.assertIn("p50=0.250ms", r.stdout)
        self.assertIn("p90=0.370ms", r.stdout)
        self.assertIn("p99=0.397ms", r.stdout)
        self.assertIn("max=0.400ms", r.stdout)
        self.assertIn("gvt progress: 2 samples, 0 -> 350", r.stdout)

    def test_drop_accounting_warns(self):
        trace = {"traceEvents": [span("execute", 0, 0, 10)],
                 "otherData": {"dropped_node0": 42, "dropped_node1": 0,
                               "samples_truncated": 7}}
        r = run_tool(self.write(trace))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("WARNING: trace rings overflowed", r.stdout)
        self.assertIn("dropped_node0: 42", r.stdout)
        # Zero-drop entries are not reported.
        self.assertNotIn("dropped_node1", r.stdout)
        self.assertIn("metrics samples truncated: 7", r.stdout)

    def test_empty_trace_is_legal(self):
        r = run_tool(self.write({"traceEvents": []}))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("empty trace", r.stdout)

    def test_malformed_inputs_exit_1(self):
        # Invalid JSON.
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w") as f:
            f.write("{not json")
        self.assertEqual(run_tool(bad).returncode, 1)
        # Valid JSON without the traceEvents key.
        self.assertEqual(run_tool(self.write({"foo": 1})).returncode, 1)
        # Missing file.
        missing = os.path.join(self.tmp.name, "nope.json")
        self.assertEqual(run_tool(missing).returncode, 1)
        # No file argument prints usage and exits 1.
        r = subprocess.run([sys.executable, TOOL], capture_output=True,
                           text=True)
        self.assertEqual(r.returncode, 1)


if __name__ == "__main__":
    unittest.main()
