#!/usr/bin/env python3
"""Summarize a pls-warped Perfetto trace.json on the terminal.

Reads the Chrome Trace Event Format file written by --trace (see
src/obs/export.hpp / docs/OBSERVABILITY.md) and prints:

  * per-node, per-phase wall-time breakdown (sum of span durations by
    event name, plus instant counts) — where each node thread spent its
    recorded time;
  * a rollback-storm timeline: rollback instants bucketed over wall time,
    with the events-undone total per bucket, so a storm shows up as a
    dense stripe;
  * GVT round latencies (gvt_start → gvt_done pairing by round, node 0)
    with percentiles, and the GVT-counter progress summary;
  * drop accounting from "otherData" — a truncated ring is reported, not
    silently summarized.

Usage:
    trace_summary.py <trace.json> [--buckets N]

Exit code 1 on malformed input; 0 otherwise (an empty trace is legal).
"""

import json
import sys


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    k = (len(sorted_vals) - 1) * p
    lo, hi = int(k), min(int(k) + 1, len(sorted_vals) - 1)
    frac = k - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def fmt_ms(us):
    return f"{us / 1000.0:.3f}ms"


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    buckets = 40
    for i, a in enumerate(sys.argv[1:]):
        if a == "--buckets":
            buckets = int(sys.argv[1:][i + 1])
    if len(args) < 1:
        print(__doc__)
        return 1
    try:
        with open(args[0]) as f:
            trace = json.load(f)
        events = trace["traceEvents"]
    except (OSError, ValueError, KeyError) as e:
        print(f"trace_summary: cannot read {args[0]}: {e}", file=sys.stderr)
        return 1

    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    counters = [e for e in events if e.get("ph") == "C"]
    if not spans and not instants:
        print("empty trace (no spans or instants)")
        return 0

    # --- per-node per-phase breakdown ---------------------------------
    nodes = sorted({e["tid"] for e in spans + instants})
    print(f"== per-node phase breakdown ({len(nodes)} node(s)) ==")
    for n in nodes:
        by_name = {}
        for e in spans:
            if e["tid"] == n:
                acc = by_name.setdefault(e["name"], [0.0, 0])
                acc[0] += e.get("dur", 0.0)
                acc[1] += 1
        icounts = {}
        for e in instants:
            if e["tid"] == n:
                icounts[e["name"]] = icounts.get(e["name"], 0) + 1
        total = sum(v[0] for v in by_name.values())
        print(f"node {n}: {fmt_ms(total)} recorded in spans")
        for name, (dur, cnt) in sorted(by_name.items(),
                                       key=lambda kv: -kv[1][0]):
            pct = 100.0 * dur / total if total else 0.0
            print(f"  {name:<12} {fmt_ms(dur):>12}  {pct:5.1f}%  x{cnt}")
        for name, cnt in sorted(icounts.items()):
            print(f"  {name:<12} {'-':>12}   inst   x{cnt}")

    # --- rollback-storm timeline --------------------------------------
    rbs = [e for e in instants if e["name"] == "rollback"]
    print(f"\n== rollback timeline ({len(rbs)} rollbacks) ==")
    if rbs:
        t0 = min(e["ts"] for e in rbs)
        t1 = max(e["ts"] for e in rbs)
        width = max(t1 - t0, 1e-9)
        counts = [0] * buckets
        undone = [0] * buckets
        for e in rbs:
            i = min(int((e["ts"] - t0) / width * buckets), buckets - 1)
            counts[i] += 1
            undone[i] += int(e.get("args", {}).get("undone", 0))
        peak = max(counts)
        bar = "".join(
            " " if c == 0 else
            ("." if c <= peak / 4 else (":" if c <= peak / 2 else "#"))
            for c in counts)
        print(f"  [{bar}]  ({fmt_ms(t0)} .. {fmt_ms(t1)}, "
              f"peak {peak}/bucket)")
        print(f"  events undone total: {sum(undone)}")

    # --- GVT round latency --------------------------------------------
    starts = {}
    durs = []
    for e in instants:
        if e["name"] == "gvt_start":
            starts[e.get("args", {}).get("round")] = e["ts"]
        elif e["name"] == "gvt_done":
            r = e.get("args", {}).get("round")
            if r in starts:
                durs.append(e["ts"] - starts.pop(r))
    print(f"\n== GVT rounds ({len(durs)} completed with matched start) ==")
    if durs:
        durs.sort()
        print(f"  latency p50={fmt_ms(percentile(durs, 0.5))} "
              f"p90={fmt_ms(percentile(durs, 0.9))} "
              f"p99={fmt_ms(percentile(durs, 0.99))} "
              f"max={fmt_ms(durs[-1])}")
    gvt_series = [e for e in counters if e["name"] == "gvt"]
    if gvt_series:
        vals = [e["args"]["value"] for e in gvt_series]
        print(f"  gvt progress: {len(vals)} samples, "
              f"{vals[0]} -> {vals[-1]}")

    # --- drop accounting ----------------------------------------------
    other = trace.get("otherData", {})
    dropped = {k: v for k, v in other.items()
               if k.startswith("dropped_") and v}
    if dropped:
        print("\n== WARNING: trace rings overflowed ==")
        for k, v in sorted(dropped.items()):
            print(f"  {k}: {v} events lost (oldest overwritten)")
    if other.get("samples_truncated"):
        print(f"  metrics samples truncated: {other['samples_truncated']}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
